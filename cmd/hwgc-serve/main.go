// hwgc-serve exposes the experiment fleet as a long-running simulation
// service: an HTTP/JSON API over a bounded job queue drained by a worker
// pool, with every result stored in the content-addressed cache so
// repeated cells are served without re-simulating. See docs/SERVICE.md.
//
// Usage:
//
//	hwgc-serve                         # listen on :8077
//	hwgc-serve -addr :9000 -workers 4
//	hwgc-serve -cache-dir /var/cache/hwgc   # persistent result cache
//	hwgc-serve -job-timeout 10m        # cancel cells that run too long
//	hwgc-serve -ledger runs/           # append a run manifest per job
//	hwgc-serve -pprof                  # expose /debug/pprof/
//
// Cluster mode turns the daemon into a coordinator: jobs are dispatched to
// registered workers (cmd/hwgc-worker) through per-job leases instead of
// running in-process, with the protocol endpoints mounted under
// /cluster/v1/ on the same listener (see docs/SERVICE.md §5):
//
//	hwgc-serve -cluster                          # coordinator; remote workers only
//	hwgc-serve -cluster -cluster-local-workers 2 # plus 2 in-process loopback workers
//	hwgc-serve -cluster -lease-ttl 2m            # slow cells need longer leases
//	hwgc-serve -cluster -trace-spans 0           # disable distributed span recording
//
// In cluster mode every job carries a wall-clock trace: GET /cluster/v1/trace
// exports the span buffer plus the control-plane flight recorder, and
// GET /cluster/v1/metrics serves federated cluster-wide Prometheus series
// (see docs/OBSERVABILITY.md "Distributed tracing"). GET /healthz and
// GET /readyz are liveness/readiness probes (-log-format {text,json} picks
// the structured log encoding).
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight jobs finish
// (bounded by -drain-timeout, then cancelled; in cluster mode leased jobs
// complete or re-queue before the listener closes), new submissions get
// 503, and the process exits 0.
//
//	curl -s localhost:8077/v1/experiments
//	curl -s -X POST localhost:8077/v1/jobs \
//	    -d '{"experiment":"fig15","options":{"Quick":true},"wait":true}'
//	curl -s localhost:8077/v1/jobs/job-000001
//	curl -s localhost:8077/v1/jobs/job-000001/progress
//	curl -s localhost:8077/v1/jobs/job-000001/report > job.html
//	curl -s localhost:8077/v1/metrics
//	curl -s localhost:8077/metrics     # Prometheus text format
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hwgc/internal/cluster"
	"hwgc/internal/experiments"
	"hwgc/internal/ledger"
	"hwgc/internal/resultcache"
	"hwgc/internal/service"
	"hwgc/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	queue := flag.Int("queue", 64, "max queued jobs; submissions past this get 503")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline (0 = none)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory result cache entries (0 = default)")
	cacheDir := flag.String("cache-dir", "", "persist cached results under this directory")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long in-flight jobs may keep running after SIGINT/SIGTERM before being cancelled")
	sampleEvery := flag.Uint64("sample-every", 1024, "telemetry gauge sampling interval in cycles")
	ledgerDir := flag.String("ledger", "", "append one run manifest per finished job under this directory")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	clusterOn := flag.Bool("cluster", false,
		"coordinator mode: dispatch jobs to cluster workers (hwgc-worker) via /cluster/v1/ leases")
	localWorkers := flag.Int("cluster-local-workers", 0,
		"with -cluster: also run this many in-process loopback workers")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second,
		"with -cluster: lease validity window; expired leases re-queue the job")
	retain := flag.Int("retain", 0,
		"finished jobs kept before eviction (later lookups get 410; 0 = default 4096, negative = unlimited)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	traceSpans := flag.Int("trace-spans", telemetry.DefaultMaxSpans,
		"with -cluster: wall-span recorder capacity for distributed tracing (0 disables span recording)")
	flag.Parse()

	logger, err := telemetry.NewLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hwgc-serve:", err)
		os.Exit(2)
	}

	cache, err := resultcache.New(*cacheEntries, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var store *ledger.Store
	if *ledgerDir != "" {
		store, err = ledger.Open(*ledgerDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// A synchronized hub lets every concurrently running simulation attach
	// (each forks a private child), so jobs keep the fleet's full parallel
	// width and /v1/metrics merges service, cache, and simulation metrics.
	hub := telemetry.NewSyncHub(*sampleEvery)
	telemetry.SetDefault(hub)

	svcCfg := service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		JobTimeout:     *jobTimeout,
		Cache:          cache,
		Hub:            hub,
		Ledger:         store,
		RetainFinished: *retain,
	}

	// Cluster mode: a coordinator owns dispatch (the scheduler's worker
	// pool blocks on remote completion), its protocol endpoints mount on
	// the same listener, and its per-worker series append to /metrics.
	var coord *cluster.Coordinator
	var pool *cluster.LoopbackPool
	if *clusterOn {
		var spans *telemetry.WallSpans
		if *traceSpans > 0 {
			spans = &telemetry.WallSpans{MaxSpans: *traceSpans}
		}
		coord = cluster.NewCoordinator(cluster.Config{
			LeaseTTL: *leaseTTL,
			Cache:    cache,
			Hub:      hub,
			Spans:    spans,
			Log:      logger,
		})
		// The service deliberately does not import the cluster package; the
		// two outcome structs are field-identical, so the adapter is a
		// conversion.
		svcCfg.Dispatch = func(ctx context.Context, experiment string, o experiments.Options) (service.DispatchResult, error) {
			out, err := coord.Dispatch(ctx, experiment, o)
			return service.DispatchResult(out), err
		}
		svcCfg.PromAppend = coord.WritePrometheus
		if *localWorkers > 0 {
			pool, err = cluster.StartLoopbackWorkers(coord, *localWorkers, cluster.WorkerConfig{
				Name: "local",
				Log:  logger,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	sched := service.New(svcCfg)
	d := &service.Daemon{
		Addr:         *addr,
		Scheduler:    sched,
		Hub:          hub,
		EnablePprof:  *pprofOn,
		DrainTimeout: *drainTimeout,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	}
	if coord != nil {
		d.ExtraMounts = map[string]http.Handler{"/cluster/v1/": cluster.NewHTTPHandler(coord)}
		d.OnDrain = func(ctx context.Context) {
			_ = coord.Drain(ctx)
			if pool != nil {
				_ = pool.Stop()
			}
			coord.Close()
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := d.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
