// Command hwgc-lint is the repo-native static analyzer: it type-checks the
// module's packages and enforces the determinism, map-order, hot-path, and
// wire-protocol contracts (see docs/LINTING.md).
//
//	hwgc-lint ./...                      # whole module
//	hwgc-lint ./internal/sim ./internal/cluster
//	hwgc-lint -rules determinism ./...   # one rule suite
//	hwgc-lint -json ./...                # machine-readable diagnostics
//	hwgc-lint -suggest ./...             # print sorted-keys rewrites
//	hwgc-lint -fix ./...                 # apply the mechanical rewrites
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 driver failure (package
// does not build, go list unavailable, bad flags). CI treats 1 as a merge
// blocker, same as hwgc-report -check and allocguard.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/format"
	"os"
	"strings"

	"hwgc/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	rules := flag.String("rules", "", "comma-separated rule subset (default: all): "+strings.Join(analysis.RuleNames(), ","))
	suggest := flag.Bool("suggest", false, "print ready-to-paste sorted-keys rewrites for fixable maporder findings")
	fix := flag.Bool("fix", false, "apply the mechanical sorted-keys rewrites in place, then re-report what remains")
	dir := flag.String("C", ".", "directory to resolve package patterns from")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	checkers, err := selectCheckers(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hwgc-lint:", err)
		return 2
	}

	cfg := analysis.DefaultConfig()
	prog, err := analysis.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hwgc-lint:", err)
		return 2
	}
	diags := analysis.Run(prog, cfg, checkers)

	if *fix {
		applied, err := analysis.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hwgc-lint:", err)
			return 2
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "hwgc-lint: applied %d fix(es); re-checking\n", applied)
			prog, err = analysis.Load(*dir, patterns)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hwgc-lint:", err)
				return 2
			}
			diags = analysis.Run(prog, cfg, checkers)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "hwgc-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
			if *suggest && d.Fix != nil {
				fmt.Println("  suggested rewrite:")
				for _, line := range strings.Split(formatSnippet(d.Fix.NewText), "\n") {
					fmt.Println("    " + line)
				}
				if d.Fix.NeedImport != "" {
					fmt.Printf("    (needs import %q)\n", d.Fix.NeedImport)
				}
			}
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hwgc-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectCheckers resolves the -rules flag to checker instances.
func selectCheckers(ruleList string) ([]analysis.Checker, error) {
	all := analysis.AllCheckers()
	if ruleList == "" {
		return all, nil
	}
	byName := map[string]analysis.Checker{}
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []analysis.Checker
	for _, name := range strings.Split(ruleList, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", name, strings.Join(analysis.RuleNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// formatSnippet best-effort gofmt-s a statement-level snippet for display.
func formatSnippet(s string) string {
	wrapped := "package p\nfunc _() {\n" + s + "\n}"
	formatted, err := format.Source([]byte(wrapped))
	if err != nil {
		return s
	}
	text := string(formatted)
	open := strings.Index(text, "{\n")
	close := strings.LastIndex(text, "\n}")
	if open < 0 || close < 0 || open+2 > close {
		return s
	}
	body := text[open+2 : close]
	var lines []string
	for _, line := range strings.Split(body, "\n") {
		lines = append(lines, strings.TrimPrefix(line, "\t"))
	}
	return strings.Join(lines, "\n")
}
