package hwgc

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation. Each iteration regenerates the experiment at
// reduced (Quick) scale and reports key simulator metrics; the full-scale
// numbers for EXPERIMENTS.md come from cmd/hwgc-bench.
//
//	go test -bench=. -benchmem            # all figures, quick scale
//	go test -bench=BenchmarkFig15         # one figure

import (
	"testing"

	"hwgc/internal/core"
	"hwgc/internal/rts"
	"hwgc/internal/snapshot"
	"hwgc/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	o := QuickOptions()
	for i := 0; i < b.N; i++ {
		rep, err := RunExperiment(id, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkFig01aGCTime(b *testing.B)        { benchExperiment(b, "fig1a") }
func BenchmarkFig01bTailLatency(b *testing.B)   { benchExperiment(b, "fig1b") }
func BenchmarkTable1Config(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkFig15MarkSweep(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16Bandwidth(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17FastMemory(b *testing.B)     { benchExperiment(b, "fig17") }
func BenchmarkFig18CachePartition(b *testing.B) { benchExperiment(b, "fig18") }
func BenchmarkFig19MarkQueue(b *testing.B)      { benchExperiment(b, "fig19") }
func BenchmarkFig20SweeperScaling(b *testing.B) { benchExperiment(b, "fig20") }
func BenchmarkFig21MarkBitCache(b *testing.B)   { benchExperiment(b, "fig21") }
func BenchmarkFig22Area(b *testing.B)           { benchExperiment(b, "fig22") }
func BenchmarkFig23Energy(b *testing.B)         { benchExperiment(b, "fig23") }
func BenchmarkAblMAS(b *testing.B)              { benchExperiment(b, "abl-mas") }
func BenchmarkAblLayout(b *testing.B)           { benchExperiment(b, "abl-layout") }
func BenchmarkAblBarriers(b *testing.B)         { benchExperiment(b, "abl-barriers") }
func BenchmarkAblThrottle(b *testing.B)         { benchExperiment(b, "abl-throttle") }

// benchFullSuite runs every experiment through the fleet at the given
// width and reports host wall time per full suite (workloads carry an extra
// shrink so one iteration stays in benchmark territory; run with
// -benchtime=1x for the scripts/bench.sh numbers).
func benchFullSuite(b *testing.B, parallel int) {
	b.Helper()
	o := QuickOptions()
	o.Shrink = 8
	runners := Experiments()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range RunFleet(runners, o, parallel) {
			if res.Err != nil {
				b.Fatalf("%s: %v", res.Runner.ID, res.Err)
			}
		}
	}
}

// BenchmarkHostFullSuiteSerial is the quick experiment suite end to end,
// one cell at a time.
func BenchmarkHostFullSuiteSerial(b *testing.B) { benchFullSuite(b, 1) }

// BenchmarkHostFullSuiteParallel is the same suite fanned out to GOMAXPROCS
// workers; on a multi-core host wall time drops while output stays
// byte-identical (see internal/experiments.TestFleetParallelMatchesSerial).
func BenchmarkHostFullSuiteParallel(b *testing.B) { benchFullSuite(b, 0) }

// BenchmarkHostColdBuild measures building one simulation cell's initial
// heap image from scratch: system assembly plus the full workload graph
// (what every cell paid before the snapshot store).
func BenchmarkHostColdBuild(b *testing.B) {
	cfg := ScaledConfig()
	spec, _ := workload.ByName("avrora")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := rts.NewSystem(cfg.System)
		app := workload.NewApp(sys, spec, 42)
		if !app.Populate() {
			b.Fatal("populate failed")
		}
	}
}

// BenchmarkHostSnapshotClone measures instantiating the same cell from the
// snapshot store's copy-on-write image (what cells pay now: O(pages) index
// copies, no page data, no graph rebuild).
func BenchmarkHostSnapshotClone(b *testing.B) {
	cfg := ScaledConfig()
	spec, _ := workload.ByName("avrora")
	img := snapshot.NewStore(0).Get(cfg.System, spec, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := img.Instantiate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnitMarkPhase measures one hardware mark phase end to end
// (cycles are simulated; ns/op is host time to simulate it).
func BenchmarkUnitMarkPhase(b *testing.B) {
	cfg := ScaledConfig()
	spec, _ := workload.ByName("avrora")
	spec.LiveObjects /= 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner, err := core.NewAppRunner(cfg, spec, core.HWCollector, 42)
		if err != nil {
			b.Fatal(err)
		}
		if err := runner.Step(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(runner.Res.GCs[0].MarkCycles), "sim-cycles")
	}
}

// benchMarkPhaseTelemetry runs the hardware mark phase with the given hub
// constructor (nil = telemetry disabled) to measure the observability
// layer's host-time overhead on the simulator's inner loops.
func benchMarkPhaseTelemetry(b *testing.B, mkHub func() *Telemetry) {
	cfg := ScaledConfig()
	spec, _ := workload.ByName("avrora")
	spec.LiveObjects /= 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner, err := core.NewAppRunner(cfg, spec, core.HWCollector, 42)
		if err != nil {
			b.Fatal(err)
		}
		if mkHub != nil {
			runner.AttachTelemetry(mkHub())
		}
		if err := runner.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOff is the baseline: no hub attached, every unit on the
// nil-tracer/nil-metric fast path.
func BenchmarkTelemetryOff(b *testing.B) { benchMarkPhaseTelemetry(b, nil) }

// BenchmarkTelemetryMetrics attaches registry + sampler (no event trace).
func BenchmarkTelemetryMetrics(b *testing.B) {
	benchMarkPhaseTelemetry(b, func() *Telemetry { return NewTelemetry(1024) })
}

// BenchmarkTelemetryFull attaches registry + sampler + event tracing.
func BenchmarkTelemetryFull(b *testing.B) {
	benchMarkPhaseTelemetry(b, func() *Telemetry {
		tel := NewTelemetry(1024)
		tel.EnableTrace()
		return tel
	})
}

// BenchmarkSWMarkPhase is the software-collector counterpart.
func BenchmarkSWMarkPhase(b *testing.B) {
	cfg := ScaledConfig()
	spec, _ := workload.ByName("avrora")
	spec.LiveObjects /= 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner, err := core.NewAppRunner(cfg, spec, core.SWCollector, 42)
		if err != nil {
			b.Fatal(err)
		}
		if err := runner.Step(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(runner.Res.GCs[0].MarkCycles), "sim-cycles")
	}
}
