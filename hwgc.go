// Package hwgc is a software reproduction of "A Hardware Accelerator for
// Tracing Garbage Collection" (Maas, Asanović, Kubiatowicz — ISCA 2018): a
// cycle-approximate simulator of the paper's GC accelerator — a Traversal
// Unit (decoupled marker/tracer with a spilling mark queue) and a
// Reclamation Unit (parallel block sweepers) attached to a TileLink-style
// interconnect over a DDR3 timing model — together with the substrate it
// needs: a JikesRVM-style heap with the bidirectional object layout, page
// tables and TLBs, an in-order CPU baseline running software Mark & Sweep,
// and DaCapo-like workload generators.
//
// This package is the public facade: build a configuration, pick a
// benchmark, and compare the hardware collector against the CPU baseline,
// or regenerate any of the paper's evaluation figures.
//
//	cfg := hwgc.ScaledConfig()
//	spec, _ := hwgc.Benchmark("avrora")
//	sw, hw, _ := hwgc.Compare(cfg, spec, 3, 42)
//	fmt.Printf("mark speedup: %.2fx\n",
//	    float64(sw.MarkCycles)/float64(hw.MarkCycles))
//
// Both collectors are functional: they mark real status words and rebuild
// real free lists in the simulated physical memory, and are cross-checked
// against a reachability ground truth.
package hwgc

import (
	"hwgc/internal/core"
	"hwgc/internal/experiments"
	"hwgc/internal/resultcache"
	"hwgc/internal/snapshot"
	"hwgc/internal/telemetry"
	"hwgc/internal/workload"
)

// Config parameterizes the simulated system (Table I plus unit parameters).
type Config = core.Config

// GCResult reports one collection's timing and work.
type GCResult = core.GCResult

// AppResult summarizes an application run with periodic collections.
type AppResult = core.AppResult

// CollectorKind selects the CPU baseline or the GC unit.
type CollectorKind = core.CollectorKind

// Collector kinds.
const (
	SWCollector = core.SWCollector
	HWCollector = core.HWCollector
)

// Spec describes a benchmark workload.
type Spec = workload.Spec

// Report is a regenerated experiment result.
type Report = experiments.Report

// Options control experiment scale.
type Options = experiments.Options

// DefaultConfig returns the paper's configuration at paper parameter
// values (Table I, Section VI-A baseline unit).
func DefaultConfig() Config { return core.DefaultConfig() }

// ScaledConfig returns the experiment configuration: paper parameters with
// the unit's translation reach scaled to the 1:10 heap scale.
func ScaledConfig() Config { return experiments.ScaledConfig() }

// Benchmarks returns the six DaCapo benchmark stand-ins.
func Benchmarks() []Spec { return workload.DaCapo() }

// Benchmark returns the named benchmark spec.
func Benchmark(name string) (Spec, bool) { return workload.ByName(name) }

// Telemetry is a metrics registry + cycle sampler + event tracer bundle
// that can be attached to a simulated system (see docs/OBSERVABILITY.md).
type Telemetry = telemetry.Hub

// NewTelemetry returns a hub whose sampler snapshots gauges every
// sampleEvery cycles (0 picks the default interval). Call EnableTrace on
// the result to also record structured events.
func NewTelemetry(sampleEvery uint64) *Telemetry { return telemetry.NewHub(sampleEvery) }

// NewSyncTelemetry returns a synchronized hub: safe to install as the
// process default while simulations run concurrently, so instrumented
// fleet runs keep their full parallel width. Each simulation forks a
// private child hub internally; the hub's WriteSummary /
// WriteSamplesJSONL / WriteTraceChrome methods merge them back together.
func NewSyncTelemetry(sampleEvery uint64) *Telemetry { return telemetry.NewSyncHub(sampleEvery) }

// SetDefaultTelemetry installs tel as the process-wide default hub: every
// collector system built afterwards (including the ones experiment runners
// build internally) attaches to it. Pass nil to clear.
func SetDefaultTelemetry(tel *Telemetry) { telemetry.SetDefault(tel) }

// Run executes a benchmark with the chosen collector for gcs collections.
func Run(cfg Config, spec Spec, kind CollectorKind, gcs int, seed uint64) (AppResult, error) {
	return core.RunApp(cfg, spec, kind, gcs, seed, false)
}

// RunInstrumented is Run with a telemetry hub attached to the collector
// system: counters, sampled time series, and (when EnableTrace was called)
// trace events accumulate in tel across all gcs collections.
func RunInstrumented(cfg Config, spec Spec, kind CollectorKind, gcs int, seed uint64, tel *Telemetry) (AppResult, error) {
	r, err := core.NewAppRunner(cfg, spec, kind, seed)
	if err != nil {
		return AppResult{}, err
	}
	r.AttachTelemetry(tel)
	err = r.RunGCs(gcs)
	return r.Res, err
}

// Compare runs a benchmark on both collectors over identical heaps and
// returns the mean per-collection results.
func Compare(cfg Config, spec Spec, gcs int, seed uint64) (sw, hw GCResult, err error) {
	swRes, err := core.RunApp(cfg, spec, core.SWCollector, gcs, seed, false)
	if err != nil {
		return sw, hw, err
	}
	hwRes, err := core.RunApp(cfg, spec, core.HWCollector, gcs, seed, false)
	if err != nil {
		return sw, hw, err
	}
	return swRes.MeanGC(), hwRes.MeanGC(), nil
}

// Experiments lists every paper table/figure runner in order.
func Experiments() []experiments.Runner { return experiments.All() }

// ExperimentRunner regenerates one paper table or figure.
type ExperimentRunner = experiments.Runner

// ExperimentResult pairs an experiment runner with its report or failure
// from a fleet run.
type ExperimentResult = experiments.Result

// RunFleet executes runners with up to parallel workers (0 means
// GOMAXPROCS) and returns one result per runner in the given order.
// Reports are byte-identical to a serial run at any width; see
// docs/PERFORMANCE.md for the determinism contract. The fan-out degrades
// to serial only while a plain (non-synchronized) default telemetry hub is
// installed; NewSyncTelemetry hubs keep the full width.
func RunFleet(runners []experiments.Runner, o Options, parallel int) []ExperimentResult {
	return experiments.RunFleet(runners, o, parallel)
}

// RunExperiment regenerates one paper figure or table by ID (e.g. "fig15").
func RunExperiment(id string, o Options) (Report, error) {
	r, ok := experiments.ByID(id)
	if !ok {
		return Report{}, errUnknownExperiment(id)
	}
	return r.Run(o)
}

// DefaultOptions returns full-scale experiment options.
func DefaultOptions() Options { return experiments.DefaultOptions() }

// QuickOptions returns reduced-scale options for smoke runs.
func QuickOptions() Options { return experiments.QuickOptions() }

// ResultCache is the content-addressed result store behind hwgc-bench's
// -cache flag and the hwgc-serve daemon: results are keyed by a canonical
// hash of everything that determines them, and — because reports are
// byte-identical at any fleet width — a hit is provably identical to
// recomputation. See docs/SERVICE.md.
type ResultCache = resultcache.Cache

// NewResultCache returns a cache holding up to maxEntries results in
// memory (0 picks the default). A non-empty dir adds a persistent on-disk
// tier shared across processes.
func NewResultCache(maxEntries int, dir string) (*ResultCache, error) {
	return resultcache.New(maxEntries, dir)
}

// CachedExperiments wraps runners so each consults cache before simulating
// and stores successful reports back.
func CachedExperiments(cache *ResultCache, runners []ExperimentRunner) []ExperimentRunner {
	return experiments.Cached(cache, runners)
}

// SetSnapshots toggles the process-wide heap-image snapshot store (the
// -snapshot flag, default on): with it on, each simulation cell starts from
// a copy-on-write clone of a once-built initial heap image instead of
// rebuilding the image from scratch. Reports are byte-identical either way;
// see docs/PERFORMANCE.md.
func SetSnapshots(on bool) { snapshot.SetEnabled(on) }

// SnapshotsEnabled reports whether cells instantiate from the snapshot
// store.
func SnapshotsEnabled() bool { return snapshot.Enabled() }

// SnapshotStats reports heap-image snapshot store traffic: Misses counts
// images cold-built, Hits counts cells served a copy-on-write clone.
type SnapshotStats = snapshot.Stats

// SnapshotStoreStats returns the process-wide snapshot store's counters.
func SnapshotStoreStats() SnapshotStats { return snapshot.Default().Stats() }

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "hwgc: unknown experiment " + string(e)
}
