package hwgc

import (
	"bytes"
	"strings"
	"testing"
)

// runInstrumented executes one small hardware collection with a fully
// enabled telemetry hub and returns the hub plus its serialized outputs.
func runInstrumented(t *testing.T) (*Telemetry, string, string, string) {
	t.Helper()
	cfg := ScaledConfig()
	spec, _ := Benchmark("avrora")
	spec.LiveObjects /= 8
	tel := NewTelemetry(256)
	tel.EnableTrace()
	if _, err := RunInstrumented(cfg, spec, HWCollector, 1, 7, tel); err != nil {
		t.Fatal(err)
	}
	var metrics, trace, summary bytes.Buffer
	if err := tel.Sampler.WriteJSONL(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := tel.Trace.WriteChrome(&trace); err != nil {
		t.Fatal(err)
	}
	if err := tel.Reg.WriteSummary(&summary); err != nil {
		t.Fatal(err)
	}
	return tel, metrics.String(), trace.String(), summary.String()
}

// TestTelemetryEndToEnd runs a real collection with telemetry attached and
// checks the key metrics are populated and the trace covers the simulated
// units.
func TestTelemetryEndToEnd(t *testing.T) {
	tel, metrics, trace, summary := runInstrumented(t)

	for _, name := range []string{
		"tracer.marker.marks",
		"tracer.tracer.chunkreqs",
		"tilelink.grants",
		"dram.accesses",
		"sweep.blocksswept",
		"tracer.walker.walks",
	} {
		v, ok := tel.Reg.Value(name)
		if !ok {
			t.Errorf("metric %s not registered", name)
		} else if v == 0 {
			t.Errorf("metric %s = 0 after a collection", name)
		}
	}
	if tel.Sampler.Len() == 0 {
		t.Fatal("sampler recorded no rows")
	}
	if _, vals := tel.Sampler.Series("tracer.markqueue.occupancy"); len(vals) == 0 {
		t.Fatal("no mark-queue occupancy series")
	}

	// The trace must carry spans from at least four distinct units.
	units := tel.Trace.Units()
	if len(units) < 4 {
		t.Fatalf("trace covers %d units (%v), want >= 4", len(units), units)
	}
	for _, want := range []string{"tilelink", "dram", "tracer.marker", "core"} {
		found := false
		for _, u := range units {
			if u == want {
				found = true
			}
		}
		if !found {
			t.Errorf("no trace events from unit %s (have %v)", want, units)
		}
	}

	if !strings.Contains(metrics, "tracer.markqueue.occupancy") {
		t.Error("metrics JSONL missing mark-queue occupancy")
	}
	if !strings.Contains(metrics, "dram.bank0.openrow") {
		t.Error("metrics JSONL missing DRAM bank state")
	}
	if !strings.Contains(trace, `"ph":"X"`) {
		t.Error("Chrome trace has no spans")
	}
	if !strings.Contains(summary, "tracer.marker.latency") {
		t.Error("summary missing marker latency histogram")
	}
}

// TestTelemetryDeterministic checks that two identical instrumented runs
// produce byte-identical metric, trace, and summary output.
func TestTelemetryDeterministic(t *testing.T) {
	_, m1, t1, s1 := runInstrumented(t)
	_, m2, t2, s2 := runInstrumented(t)
	if m1 != m2 {
		t.Error("metric time series differ between identical runs")
	}
	if t1 != t2 {
		t.Error("trace output differs between identical runs")
	}
	if s1 != s2 {
		t.Error("summary output differs between identical runs")
	}
}

// TestTelemetryDoesNotPerturbTiming checks the engine-probe guarantee: a
// run with full telemetry attached reports exactly the cycle counts of an
// uninstrumented run.
func TestTelemetryDoesNotPerturbTiming(t *testing.T) {
	cfg := ScaledConfig()
	spec, _ := Benchmark("avrora")
	spec.LiveObjects /= 8
	plain, err := Run(cfg, spec, HWCollector, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry(64)
	tel.EnableTrace()
	inst, err := RunInstrumented(cfg, spec, HWCollector, 1, 7, tel)
	if err != nil {
		t.Fatal(err)
	}
	p, q := plain.GCs[0], inst.GCs[0]
	if p.MarkCycles != q.MarkCycles || p.SweepCycles != q.SweepCycles {
		t.Fatalf("telemetry perturbed timing: plain mark=%d sweep=%d, instrumented mark=%d sweep=%d",
			p.MarkCycles, p.SweepCycles, q.MarkCycles, q.SweepCycles)
	}
}
